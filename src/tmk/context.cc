#include "tmk/context.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.hpp"
#include "sim/virtual_clock.hpp"
#include "trace/tracer.hpp"

#include <ctime>

namespace omsp::tmk {

namespace {
// Debug tracing for one page, enabled with OMSP_TRACE_PAGE=<id> (or -2 for
// all pages); OMSP_TRACE_OFF selects the in-page byte offset whose 64-bit
// value is printed with each event.
int trace_page() {
  static int page = [] {
    const char* env = std::getenv("OMSP_TRACE_PAGE");
    return env != nullptr ? std::atoi(env) : -1;
  }();
  return page;
}
std::size_t trace_off() {
  static std::size_t off = [] {
    const char* env = std::getenv("OMSP_TRACE_OFF");
    return env != nullptr ? static_cast<std::size_t>(std::atoi(env)) : 0;
  }();
  return off;
}
#define OMSP_PTRACE(p, ...)                                                   \
  do {                                                                        \
    if (trace_page() == -2 || static_cast<int>(p) == trace_page())            \
        [[unlikely]] {                                                        \
      char tbuf_[512];                                                        \
      int tn_ =                                                               \
          std::snprintf(tbuf_, sizeof tbuf_, "[ctx%u pg%u] ", id_, (p));      \
      tn_ += std::snprintf(tbuf_ + tn_, sizeof tbuf_ - tn_, __VA_ARGS__);     \
      tbuf_[tn_++] = '\n';                                                    \
      std::fwrite(tbuf_, 1, tn_, stderr);                                     \
    }                                                                         \
  } while (0)
// Chaos mode (OMSP_CHAOS=<permille>): sleeps a random few microseconds at
// protocol decision points to shake out interleavings the scheduler would
// rarely produce. Zero overhead when the variable is unset.
unsigned chaos_permille() {
  // Read dynamically (not latched) so tests can toggle chaos per-fixture.
  // The getenv cost only occurs at protocol decision points, never on the
  // plain load/store fast path.
  const char* env = std::getenv("OMSP_CHAOS");
  return env != nullptr ? static_cast<unsigned>(std::atoi(env)) : 0u;
}

void chaos_point() {
  const unsigned p = chaos_permille();
  if (p == 0) return;
  thread_local std::uint64_t state =
      0x9e3779b97f4a7c15ULL ^
      reinterpret_cast<std::uintptr_t>(&state);
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  if (state % 1000 < p) {
    timespec ts{0, static_cast<long>(1000 + state % 20000)}; // 1-21 us
    nanosleep(&ts, nullptr);
  }
}

} // namespace

void (*testing_home_apply_hook)(ContextId, PageId) = nullptr;

DsmContext::DsmContext(ContextId id, const Config& config, net::Router& router)
    : config_(config), id_(id), router_(router), stats_(&router.stats(id)),
      heap_(config.heap_bytes, config.use_alias_mapping(), id, stats_,
            &config.cost),
      per_page_locks_(config.use_per_page_fault_lock()) {
  nc_ = config.num_contexts();
  const std::size_t npages = heap_.pages();
  if (per_page_locks_) page_mutexes_ = std::make_unique<std::mutex[]>(npages);
  pages_.resize(npages);
  dirty_.resize(npages);
  vt_ = VectorTime(nc_);
  sync_vt_ = VectorTime(nc_);
  table_.resize(nc_);
  table_base_.assign(nc_, 0);
  last_listed_.assign(npages, 0);
  pending_.assign(npages * nc_, 0);
  applied_.assign(npages * nc_, 0);
  router_.bind_handler(id, this);
  FaultRegistry::add_region(heap_.app_base(), heap_.bytes(), this);
  // Force the one-time trap-overhead calibration NOW, in normal context: it
  // takes page faults of its own, and deferring it to the first real fault
  // would nest synchronous SIGSEGVs inside the handler — a pattern
  // ThreadSanitizer's signal interception cannot survive (and an in-handler
  // measurement would be skewed by the live signal frame anyway).
  (void)FaultRegistry::fault_trap_overhead_us();
}

DsmContext::~DsmContext() { FaultRegistry::remove_region(heap_.app_base()); }

void DsmContext::on_fault(void* addr, bool is_write) {
  OMSP_CHECK_MSG(heap_.contains(addr), "fault outside this context's heap");
  sim::RuntimeSection rs;
  if (rs.clock() != nullptr) {
    rs.clock()->charge(config_.cost.fault_dispatch_us);
    // The kernel's trap/sigreturn time around this fault was captured by the
    // clock sync as if it were application compute; take it back out.
    rs.clock()->discount_cpu(FaultRegistry::fault_trap_overhead_us());
  }
  stats_->add(Counter::kPageFaults);
  stats_->add(is_write ? Counter::kWriteFaults : Counter::kReadFaults);
  const double fault_t0 =
      rs.clock() != nullptr ? rs.clock()->now_us() : 0;

  const PageId p = heap_.page_of(addr);
  OMSP_PTRACE(p, "fault is_write=%d", is_write ? 1 : 0);
  if (race_ != nullptr) race_->record_access(id_, p, is_write);
  std::unique_lock<std::mutex> lock(page_lock(p));
  PageMeta& meta = pages_[p];
  meta.ever_accessed = true;

  for (;;) {
    if (meta.fetch_in_progress) {
      // Another thread of this node is updating the page (thread mode).
      fetch_cv_.wait(lock);
      continue;
    }
    if (meta.state == PageState::kInvalid) {
      if (config_.protocol == Protocol::kHomeLRC)
        fetch_from_home(p, lock);
      else
        fetch_and_apply(p, lock);
      // fetch_and_apply leaves state kInvalid with all pending notices
      // applied; install the final access below.
      const bool want_write = is_write || meta.twin != nullptr;
      if (want_write) {
        if (meta.twin == nullptr) make_twin(p);
        meta.state = PageState::kReadWrite;
        meta.written_since_flush = true;
        if (meta.prot != Protection::kReadWrite)
          set_prot(p, Protection::kReadWrite);
      } else {
        meta.state = PageState::kRead;
        set_prot(p, Protection::kRead);
      }
      fetch_cv_.notify_all();
      break;
    }
    if (is_write && meta.state == PageState::kRead) {
      // Write miss on a valid page: start an interval's twin (or resume one
      // a flush left behind) and open the page for writing — one mprotect;
      // the alias mapping removed the original system's separate
      // write-enable (§3.3.1).
      if (meta.twin == nullptr) make_twin(p);
      meta.state = PageState::kReadWrite;
      meta.written_since_flush = true;
      set_prot(p, Protection::kReadWrite);
      break;
    }
    // Spurious: another thread already installed sufficient access.
    break;
  }
  OMSP_TRACE_EVENT(kPageFault, id_, p, 0,
                   is_write ? trace::kFlagWrite : std::uint16_t{0},
                   rs.clock() != nullptr ? rs.clock()->now_us() - fault_t0 : 0);
}

void DsmContext::set_prot(PageId p, Protection prot) {
  PageMeta& meta = pages_[p];
  heap_.protect(p, prot);
  meta.prot = prot;
  OMSP_PTRACE(p, "set_prot %d", static_cast<int>(prot));
}

void DsmContext::make_twin(PageId p) {
  PageMeta& meta = pages_[p];
  OMSP_CHECK(meta.twin == nullptr);
  // Pooled block (recycled across twins); snapshot_page fills all of it, so
  // stale contents from a previous life never matter.
  meta.twin = twin_pool_.acquire();
  heap_.snapshot_page(p, meta.twin.get());
  if (race_ != nullptr) {
    // The detector's collection baseline starts out identical to the twin
    // and then tracks "content at last collection" (see PageMeta::race_twin).
    meta.race_twin = twin_pool_.acquire();
    std::memcpy(meta.race_twin.get(), meta.twin.get(), kPageSize);
    // A fresh twin has no uncollected bytes: mark it collected up to the
    // newest listing so a pre-sweep flush attributes new writes to its mint
    // rather than to a stale close still on file.
    std::lock_guard<std::mutex> tl(table_mutex_);
    meta.race_collected_seq = last_listed_[p];
  }
  stats_->add(Counter::kTwins);
  OMSP_TRACE_EVENT(kTwinCreate, id_, p);
  OMSP_PTRACE(p, "twin made val=%ld",
              reinterpret_cast<const long*>(meta.twin.get())[trace_off() / 8]);
  if (auto* clock = sim::VirtualClock::current(); clock != nullptr)
    clock->charge(config_.cost.twin_us);
  std::lock_guard<std::mutex> dl(dirty_mutex_);
  dirty_.set(p);
}

void DsmContext::fetch_and_apply(PageId p, std::unique_lock<std::mutex>& lock) {
  PageMeta& meta = pages_[p];
  OMSP_CHECK(!meta.fetch_in_progress);
  meta.fetch_in_progress = true;

  if (overlap_prefetch()) {
    // A barrier-time batch covering this page may still be in flight; wait
    // for it (no page lock held) so the drain below serves this fault from
    // the buffer instead of re-requesting the same diffs.
    lock.unlock();
    absorb_inflight_for(p);
    lock.lock();
  }

  struct Need {
    ContextId creator;
    IntervalSeq have;
    IntervalSeq want;
  };
  // One fetched diff awaiting the final vt-sorted apply. `view` points at
  // the diff payload: into `owned` on the copy path (vector moves preserve
  // the heap pointer, so the span survives got.push_back), or into the
  // shared reply buffer kept alive by `backing` on the zero-copy path.
  struct Got {
    std::uint64_t vtsum;
    IntervalSeq seq;
    ContextId creator;
    DiffBytes owned;
    std::shared_ptr<std::vector<std::uint8_t>> backing;
    std::span<const std::uint8_t> view;
  };

  // Collect every diff first, apply once at the end: applying per fetch
  // round could put a later round's lower-vt diff on top of bytes a causally
  // newer diff already installed. Notice batches are vector-time-complete,
  // so all causally related pendings surface within this one fetch session
  // and a single global sort yields a correct order.
  std::vector<Got> got;

  // Parse one kDiffRequest reply (shared by the sync and async rounds):
  // apply the piggybacked records, park the diffs in `got`, return the
  // highest interval tag now in hand. When the reply is zero-copy eligible
  // the vector moves into a shared backing and every diff payload is a view
  // into it — the serialize/deserialize round-trip's receive copy is
  // skipped; otherwise each diff is copied out exactly as before. Called
  // with no page lock held (apply_records takes page locks).
  auto parse_reply = [&](std::vector<std::uint8_t>&& reply, ContextId creator,
                         IntervalSeq have) -> IntervalSeq {
    std::shared_ptr<std::vector<std::uint8_t>> backing;
    const bool zc = zerocopy_eligible(creator, reply.size());
    if (zc)
      backing = std::make_shared<std::vector<std::uint8_t>>(std::move(reply));
    ByteReader r(zc ? *backing : reply);
    auto recs = deserialize_records(r);
    if (!recs.empty())
      apply_records(recs, /*sync=*/false); // data piggyback, no page lock
    const auto floor = r.get<IntervalSeq>();
    const auto count = r.get<std::uint32_t>();
    IntervalSeq maxseq = std::max(have, floor);
    std::uint64_t viewed = 0;
    for (std::uint32_t j = 0; j < count; ++j) {
      Got g;
      g.seq = r.get<IntervalSeq>();
      g.vtsum = r.get<std::uint64_t>();
      g.creator = creator;
      if (zc) {
        const auto n = r.get<std::uint32_t>();
        g.view = r.view_bytes(n);
        g.backing = backing;
        viewed += n;
      } else {
        g.owned = r.get_span<std::uint8_t>();
        g.view = g.owned;
      }
      maxseq = std::max(maxseq, g.seq);
      got.push_back(std::move(g));
    }
    if (zc) {
      stats_->add(Counter::kZeroCopyDeliveries);
      stats_->add(Counter::kZeroCopyBytes, viewed);
      OMSP_TRACE_EVENT(kZeroCopyDeliver, id_, creator, viewed);
    }
    return maxseq;
  };
  for (;;) {
    std::vector<Need> needs;
    VectorTime my_vt;
    {
      std::lock_guard<std::mutex> tl(table_mutex_);
      my_vt = vt_;
      for (ContextId c = 0; c < nc_; ++c) {
        if (c == id_) continue;
        const IntervalSeq pend = pending_[std::size_t{p} * nc_ + c];
        const IntervalSeq have = applied_[std::size_t{p} * nc_ + c];
        if (pend > have) needs.push_back({c, have, pend});
      }
    }
    if (needs.empty()) break;

    if (overlap_prefetch()) {
      // Drain buffered prefetched diffs first (page lock held; the buffer
      // mutex is taken briefly and never blocks). A need fully covered by
      // the buffer is a prefetch hit and skips the network entirely; a
      // partial cover just raises `have` for the request below. applied_
      // only advances here — inside the fetch session that moves the bytes
      // into `got` — never at absorb time.
      std::vector<PrefetchEntry> entries;
      {
        std::lock_guard<std::mutex> pm(prefetch_mutex_);
        auto it = prefetch_buffer_.find(p);
        if (it != prefetch_buffer_.end()) {
          entries = std::move(it->second);
          prefetch_buffer_.erase(it);
        }
      }
      if (!entries.empty()) {
        auto* clock = sim::VirtualClock::current();
        for (auto it = needs.begin(); it != needs.end();) {
          Need& nd = *it;
          // Merge every buffered entry from this creator: rounds chain (each
          // requested only diffs above the previous round's coverage), so the
          // contiguous history is the union of the entries, not the last one.
          IntervalSeq maxseq = nd.have;
          std::uint64_t used_bytes = 0;
          double ready = 0;
          bool matched = false;
          for (auto& ent : entries) {
            if (ent.creator != nd.creator) continue;
            matched = true;
            maxseq = std::max(maxseq, ent.floor);
            ready = std::max(ready, ent.ready_us);
            for (auto& d : ent.diffs) {
              if (d.seq <= nd.have) continue; // stale: already applied
              used_bytes += d.view.size();
              maxseq = std::max(maxseq, d.seq);
              got.push_back(Got{d.vt_sum, d.seq, nd.creator,
                                std::move(d.owned), std::move(d.backing),
                                d.view});
            }
          }
          if (!matched) {
            ++it;
            continue;
          }
          {
            std::lock_guard<std::mutex> tl(table_mutex_);
            IntervalSeq& a = applied_[std::size_t{p} * nc_ + nd.creator];
            a = std::max(a, maxseq);
          }
          // Residual stall: zero when the batch completed before this first
          // touch (the prefetch fully overlapped with compute).
          const double t0 = clock != nullptr ? clock->now_us() : 0;
          if (clock != nullptr) clock->advance_to(ready);
          const double residual = clock != nullptr ? clock->now_us() - t0 : 0;
          if (maxseq >= nd.want) {
            OMSP_PTRACE(p, "prefetch hit creator=%u bytes=%llu", nd.creator,
                        static_cast<unsigned long long>(used_bytes));
            stats_->add(Counter::kPrefetchHits);
            OMSP_TRACE_EVENT(kPrefetchHit, id_, p, used_bytes,
                             router_.same_node(id_, nd.creator)
                                 ? std::uint16_t{0}
                                 : trace::kFlagOffNode,
                             residual);
            it = needs.erase(it);
          } else {
            nd.have = std::max(nd.have, maxseq);
            ++it;
          }
        }
      }
      // The absorbed records may have queued fresh notices; recompute.
      if (needs.empty()) continue;
    }

    for (const Need& nd : needs)
      OMSP_PTRACE(p, "fetch need creator=%u have=%u want=%u", nd.creator,
                  nd.have, nd.want);

    // Fetch with no page lock held: a remote context may concurrently be
    // fetching *our* diffs for the same page (mutual false sharing) and its
    // request handler takes our page lock.
    lock.unlock();
    chaos_point();
    if (overlap_async_fetch()) {
      // Overlapped round: issue every per-creator request at once, then
      // collect. The requests serialize on this sender's occupancy but their
      // RTTs overlap, so the round's stall is the max of the in-flight
      // completions, not the sum — TreadMarks' SIGIO request service lets
      // creators reply concurrently. Reply parsing is identical to the sync
      // path below; only the waiting (and the trace event) differ.
      auto* clock = sim::VirtualClock::current();
      const double t0 = clock != nullptr ? clock->now_us() : 0;
      std::vector<net::PendingReply> pendings;
      pendings.reserve(needs.size());
      bool offnode = false;
      for (const Need& need : needs) {
        ByteWriter req;
        req.put<PageId>(p);
        req.put<IntervalSeq>(need.have);
        req.put<IntervalSeq>(need.want);
        my_vt.serialize(req);
        pendings.push_back(
            router_.transport().call_async(net::Envelope::request(
                id_, need.creator, net::MsgType::kDiffRequest, req)));
        if (!router_.same_node(id_, need.creator)) offnode = true;
      }
      std::uint64_t total_bytes = 0;
      double last_complete = t0;
      for (std::size_t i = 0; i < needs.size(); ++i) {
        const Need& need = needs[i];
        double complete = 0;
        auto reply = pendings[i].wait_at(&complete); // no clock advance yet
        last_complete = std::max(last_complete, complete);
        total_bytes += reply.size();
        const IntervalSeq maxseq =
            parse_reply(std::move(reply), need.creator, need.have);
        std::lock_guard<std::mutex> tl(table_mutex_);
        IntervalSeq& a = applied_[std::size_t{p} * nc_ + need.creator];
        a = std::max(a, maxseq);
        OMSP_PTRACE(p, "applied[%u] -> %u (async)", need.creator, a);
      }
      if (clock != nullptr) clock->advance_to(last_complete);
      OMSP_TRACE_EVENT(kDiffFetchAsync, id_, p, total_bytes,
                       offnode ? trace::kFlagOffNode : std::uint16_t{0},
                       clock != nullptr ? clock->now_us() - t0 : 0);
    } else {
      for (const Need& need : needs) {
        // The request carries our vector time; the reply piggybacks every
        // interval record we lack. Merging them (an acquire, effectively)
        // before our next interval closes makes our later intervals causally
        // dominate every byte consumed here — the property that makes the
        // vt-sum apply order correct for conflicting diffs.
        ByteWriter req;
        req.put<PageId>(p);
        req.put<IntervalSeq>(need.have);
        req.put<IntervalSeq>(need.want);
        my_vt.serialize(req);
        auto reply = router_.transport().call(net::Envelope::request(
            id_, need.creator, net::MsgType::kDiffRequest, req));
        OMSP_TRACE_EVENT(kDiffFetch, id_, p, reply.size(),
                         router_.same_node(id_, need.creator)
                             ? std::uint16_t{0}
                             : trace::kFlagOffNode);
        const IntervalSeq maxseq =
            parse_reply(std::move(reply), need.creator, need.have);
        {
          std::lock_guard<std::mutex> tl(table_mutex_);
          IntervalSeq& a = applied_[std::size_t{p} * nc_ + need.creator];
          a = std::max(a, maxseq);
          OMSP_PTRACE(p, "applied[%u] -> %u", need.creator, a);
        }
      }
    }
    lock.lock();
    // Loop: the piggybacked records (or a concurrent acquire by another
    // thread of this node) may have queued new notices while we fetched.
  }

  // Apply in a linearization of happens-before (vt sums): causally ordered
  // diffs land in order; concurrent diffs touch disjoint bytes in any
  // data-race-free program, so their relative order is irrelevant.
  std::stable_sort(got.begin(), got.end(),
                   [](const Got& a, const Got& b) { return a.vtsum < b.vtsum; });
  if (!got.empty()) {
    // The write-enable below is the faulting application thread's own
    // modeled mprotect (original TreadMarks); the store itself goes through
    // the runtime mapping so no sibling access can slip past detection.
    if (!heap_.has_alias() && meta.prot != Protection::kReadWrite)
      set_prot(p, Protection::kReadWrite); // original needs write-enable
    std::uint8_t* dst = heap_.runtime_page(p);
    auto* clock = sim::VirtualClock::current();
    for (const Got& g : got) {
      apply_diff(g.view, dst);
      OMSP_PTRACE(p,
                  "apply diff creator=%u seq=%u bytes=%zu vtsum=%llu -> val=%ld",
                  g.creator, g.seq, g.view.size(),
                  static_cast<unsigned long long>(g.vtsum),
                  reinterpret_cast<const long*>(dst)[trace_off() / 8]);
      // A locally-dirty page must absorb remote diffs into its twin as well:
      // otherwise this context's next diff would re-export the remote bytes
      // under its own (possibly concurrent) interval, and a third context
      // could apply that stale copy over a newer write. With the twin kept
      // current, local diffs contain local writes only.
      if (meta.twin != nullptr) apply_diff(g.view, meta.twin.get());
      // The race baseline absorbs the same remote bytes: they are not this
      // context's writes and must never surface in its collection delta.
      if (meta.race_twin != nullptr) apply_diff(g.view, meta.race_twin.get());
      stats_->add(Counter::kDiffsApplied);
      OMSP_TRACE_EVENT(kDiffApply, id_, p, g.view.size());
      if (clock != nullptr)
        clock->charge(config_.cost.diff_apply_base_us +
                      config_.cost.diff_byte_us *
                          static_cast<double>(g.view.size()));
    }
  }
  meta.fetch_in_progress = false;
}

void DsmContext::handle(ContextId src, net::MsgType type, ByteReader& request,
                        ByteWriter& reply) {
  (void)src;
  if (type == net::MsgType::kDiffToHome) {
    const auto p = request.get<PageId>();
    OMSP_CHECK(home_of(p) == id_);
    // The request buffer outlives this handler (both transports keep it
    // alive across handle()), so an eligible same-node diff is applied
    // straight out of the sender's serialized bytes.
    std::span<const std::uint8_t> bytes;
    DiffBytes copied;
    if (zerocopy_eligible(src, request.remaining())) {
      const auto n = request.get<std::uint32_t>();
      bytes = request.view_bytes(n);
      stats_->add(Counter::kZeroCopyDeliveries);
      stats_->add(Counter::kZeroCopyBytes, bytes.size());
      OMSP_TRACE_EVENT(kZeroCopyDeliver, id_, src, bytes.size());
    } else {
      copied = request.get_span<std::uint8_t>();
      bytes = copied;
    }
    std::lock_guard<std::mutex> pl(page_lock(p));
    apply_bytes_at_home(p, bytes.data(), bytes.size(), /*full_page=*/false);
    stats_->add(Counter::kDiffsApplied);
    OMSP_TRACE_EVENT(kDiffApply, id_, p, bytes.size());
    return;
  }
  if (type == net::MsgType::kPageRequest) {
    const auto p = request.get<PageId>();
    OMSP_CHECK(home_of(p) == id_);
    std::lock_guard<std::mutex> pl(page_lock(p));
    // The home's copy is authoritative and always valid; snapshot it.
    std::uint8_t snapshot[kPageSize];
    heap_.snapshot_page(p, snapshot);
    reply.put_span<std::uint8_t>({snapshot, kPageSize});
    stats_->add(Counter::kFullPageFetches);
    OMSP_TRACE_EVENT(kFullPageFetch, id_, p, kPageSize);
    return;
  }
  if (type == net::MsgType::kDiffRequestBatch) {
    // Aggregated multi-page diff fetch (barrier prefetch). Semantically
    // identical to one kDiffRequest per page — and idempotent the same way —
    // just framed as a single message so a whole barrier's worth of
    // invalidations costs one request/reply pair per creator.
    const auto npages = request.get<std::uint32_t>();
    std::vector<std::pair<PageId, IntervalSeq>> wants(npages);
    for (auto& [p, have] : wants) {
      p = request.get<PageId>();
      have = request.get<IntervalSeq>();
    }
    const VectorTime req_vt = VectorTime::deserialize(request);

    // Phase 1: per page, flush the outstanding twin and serialize the stored
    // diffs into a side buffer.
    ByteWriter body;
    for (const auto& [p, have] : wants) {
      OMSP_CHECK(p < pages_.size());
      std::unique_lock<std::mutex> lock(page_lock(p));
      PageMeta& meta = pages_[p];
      if (meta.twin != nullptr) flush_page_diff_locked(p);
      IntervalSeq floor;
      {
        std::lock_guard<std::mutex> tl(table_mutex_);
        floor = last_listed_[p];
      }
      body.put<PageId>(p);
      body.put<IntervalSeq>(floor);
      std::uint32_t count = 0;
      for (const auto& [seq, bytes] : meta.stored_diffs)
        if (seq > have) ++count;
      body.put<std::uint32_t>(count);
      for (const auto& [seq, bytes] : meta.stored_diffs) {
        if (seq <= have) continue;
        body.put<IntervalSeq>(seq);
        body.put<std::uint64_t>(vt_sum_of_own(seq));
        body.put_span<std::uint8_t>({bytes.data(), bytes.size()});
      }
    }

    // Phase 2: piggybacked records, computed AFTER every flush above so the
    // freshly minted intervals are included (same ordering argument as the
    // single-page reply).
    serialize_records(records_unknown_to(req_vt), reply);
    reply.put<std::uint32_t>(npages);
    const auto b = body.take();
    reply.put_bytes(b.data(), b.size());
    return;
  }

  OMSP_CHECK_MSG(type == net::MsgType::kDiffRequest,
                 "unknown tmk message type");
  const auto p = request.get<PageId>();
  const auto have = request.get<IntervalSeq>();
  (void)request.get<IntervalSeq>(); // want — informational
  const VectorTime req_vt = VectorTime::deserialize(request);
  OMSP_CHECK(p < pages_.size());

  std::unique_lock<std::mutex> lock(page_lock(p));
  PageMeta& meta = pages_[p];
  // Lazy diffing: materialize the outstanding twin only when a requester
  // actually asks for this page.
  if (meta.twin != nullptr) flush_page_diff_locked(p);

  // Piggyback every interval record the requester lacks. Computed AFTER the
  // flush so a freshly minted interval is included — the requester must
  // merge it for the causal-dominance ordering argument to hold.
  // (records_unknown_to takes the table lock, which nests inside page locks.)
  serialize_records(records_unknown_to(req_vt), reply);

  // With no twin outstanding, everything any of our published intervals has
  // listed for this page is contained in the stored diffs. The floor lets
  // the requester mark those intervals applied even when its `have` filter
  // leaves nothing to send (e.g. the content travelled under an older tag
  // fetched earlier).
  IntervalSeq floor;
  {
    std::lock_guard<std::mutex> tl(table_mutex_);
    floor = last_listed_[p];
  }
  reply.put<IntervalSeq>(floor);

  std::uint32_t count = 0;
  for (const auto& [seq, bytes] : meta.stored_diffs)
    if (seq > have) ++count;
  reply.put<std::uint32_t>(count);
  for (const auto& [seq, bytes] : meta.stored_diffs) {
    if (seq <= have) continue;
    reply.put<IntervalSeq>(seq);
    reply.put<std::uint64_t>(vt_sum_of_own(seq));
    reply.put_span<std::uint8_t>({bytes.data(), bytes.size()});
  }
}

void DsmContext::apply_bytes_at_home(PageId p, const std::uint8_t* bytes,
                                     std::size_t len, bool full_page) {
  PageMeta& meta = pages_[p];
  // The home needs write access to its own copy. The original system
  // write-enables the app mapping here — safe there because the handler
  // interrupts the lone application thread, making the RW window atomic.
  // This runtime executes handlers on other host threads, concurrently with
  // the home's application threads: relaxing the app mapping would let a
  // concurrent application store land without faulting — no twin, no dirty
  // bit, no write notice — and a later diff from a context still holding
  // the pre-window base would silently revert it (the lost update behind
  // the historical TriangularStress/HomeProcess miscompute). So the update
  // always goes through the runtime mapping; process mode only CHARGES the
  // modeled write-enable pair so its mprotect accounting (Table 3) is
  // unchanged.
  const bool modeled_write_enable =
      !heap_.has_alias() && meta.prot != Protection::kReadWrite;
  if (modeled_write_enable)
    heap_.charge_protect(p, Protection::kReadWrite);
  std::uint8_t* dst = heap_.runtime_page(p);
  if (testing_home_apply_hook != nullptr) testing_home_apply_hook(id_, p);
  // Uncollected LOCAL writes at the home (current − race baseline) are about
  // to be overwritten by the incoming bytes — last-writer-wins at the home.
  // Freeze the baseline's OLD bytes there: mirroring the incoming bytes over
  // them would erase the local write from the value oracle, and the home's
  // side of exactly the write-write race being perpetrated would go
  // undetected. With the old bytes kept, the next collection still yields a
  // delta over the overwritten range and attributes it to the home's close.
  std::uint8_t pre[kPageSize];
  std::uint8_t old_rt[kPageSize];
  const bool preserve_local = meta.race_twin != nullptr;
  if (preserve_local) {
    heap_.snapshot_page(p, pre);
    std::memcpy(old_rt, meta.race_twin.get(), kPageSize);
  }
  if (full_page) {
    std::memcpy(dst, bytes, kPageSize);
    if (meta.twin != nullptr) std::memcpy(meta.twin.get(), bytes, kPageSize);
    if (meta.race_twin != nullptr)
      std::memcpy(meta.race_twin.get(), bytes, kPageSize);
  } else {
    apply_diff({bytes, len}, dst);
    // Keep a concurrent local twin in sync so local diffs stay local-only;
    // same for the race baseline (remote bytes are not local writes).
    if (meta.twin != nullptr) apply_diff({bytes, len}, meta.twin.get());
    if (meta.race_twin != nullptr)
      apply_diff({bytes, len}, meta.race_twin.get());
  }
  if (preserve_local) {
    std::uint8_t* rt = meta.race_twin.get();
    for (std::size_t i = 0; i < kPageSize; ++i)
      if (pre[i] != old_rt[i]) rt[i] = old_rt[i];
  }
  // Modeled restore of the application-visible protection (see above).
  if (modeled_write_enable) heap_.charge_protect(p, meta.prot);
}

void DsmContext::fetch_from_home(PageId p,
                                 std::unique_lock<std::mutex>& lock) {
  PageMeta& meta = pages_[p];
  OMSP_CHECK(!meta.fetch_in_progress);
  OMSP_CHECK(home_of(p) != id_); // the home never invalidates its own pages
  meta.fetch_in_progress = true;

  for (;;) {
    // Snapshot the notices this fetch will satisfy BEFORE asking the home: a
    // notice arriving mid-fetch describes a release the fetched image may
    // predate, so it must trigger another round, not be marked applied.
    std::vector<IntervalSeq> pend_before(nc_);
    bool anything_pending = false;
    {
      std::lock_guard<std::mutex> tl(table_mutex_);
      for (ContextId c = 0; c < nc_; ++c) {
        pend_before[c] = pending_[std::size_t{p} * nc_ + c];
        if (pend_before[c] > applied_[std::size_t{p} * nc_ + c])
          anything_pending = true;
      }
    }
    if (!anything_pending) break;

    // Preserve local writes: capture the twin delta before the whole-page
    // overwrite, re-apply it on top afterwards, and rebase the twin onto
    // the fetched image so the next release diff carries only local bytes.
    DiffBytes local_delta = diff_pool_.acquire();
    DiffBytes attributed_delta = diff_pool_.acquire();
    if (meta.twin != nullptr) {
      std::uint8_t snapshot[kPageSize];
      heap_.snapshot_page(p, snapshot);
      create_diff_into(meta.twin.get(), snapshot, local_delta, kPageSize);
      // Local writes the detector already collected live only in the race
      // baseline (race_twin − twin); capture them so the rebase below can
      // carry them onto the fetched image.
      if (meta.race_twin != nullptr)
        create_diff_into(meta.twin.get(), meta.race_twin.get(),
                         attributed_delta, kPageSize);
    }

    lock.unlock();
    ByteWriter req;
    req.put<PageId>(p);
    auto reply = router_.transport().call(net::Envelope::request(
        id_, home_of(p), net::MsgType::kPageRequest, req));
    lock.lock();

    ByteReader r(reply);
    std::span<const std::uint8_t> page_bytes;
    std::vector<std::uint8_t> page_copy; // keeps the copy-path bytes alive
    if (zerocopy_eligible(home_of(p), reply.size())) {
      // The view aliases `reply`, which outlives every use below.
      const auto n = r.get<std::uint32_t>();
      page_bytes = r.view_bytes(n);
      stats_->add(Counter::kZeroCopyDeliveries);
      stats_->add(Counter::kZeroCopyBytes, page_bytes.size());
      OMSP_TRACE_EVENT(kZeroCopyDeliver, id_, home_of(p), page_bytes.size());
    } else {
      page_copy = r.get_span<std::uint8_t>();
      page_bytes = page_copy;
    }
    OMSP_CHECK(page_bytes.size() == kPageSize);
    // As in fetch_and_apply: the write-enable is this application thread's
    // own modeled mprotect; the installation writes go through the runtime
    // mapping.
    if (!heap_.has_alias() && meta.prot != Protection::kReadWrite)
      set_prot(p, Protection::kReadWrite);
    std::uint8_t* dst = heap_.runtime_page(p);
    std::memcpy(dst, page_bytes.data(), kPageSize);
    if (meta.twin != nullptr)
      std::memcpy(meta.twin.get(), page_bytes.data(), kPageSize);
    if (meta.race_twin != nullptr) {
      // Rebase the race baseline like the twin, then restore the already-
      // attributed local writes on top: the invariant race_twin = twin +
      // attributed-local-writes survives the whole-page overwrite, so the
      // next collection still yields only writes made since the last one.
      std::memcpy(meta.race_twin.get(), page_bytes.data(), kPageSize);
      if (!attributed_delta.empty())
        apply_diff(attributed_delta, meta.race_twin.get());
    }
    if (!local_delta.empty()) {
      apply_diff(local_delta, dst); // twin NOT patched: delta stays local
    }
    diff_pool_.release(std::move(local_delta));
    diff_pool_.release(std::move(attributed_delta));
    if (auto* clock = sim::VirtualClock::current(); clock != nullptr)
      clock->charge(config_.cost.diff_apply_base_us +
                    config_.cost.diff_byte_us * kPageSize);

    // The home had every diff whose notice we held before the fetch: a
    // notice only becomes visible after its release, and the release posted
    // the diff to the home synchronously first.
    {
      std::lock_guard<std::mutex> tl(table_mutex_);
      for (ContextId c = 0; c < nc_; ++c) {
        IntervalSeq& a = applied_[std::size_t{p} * nc_ + c];
        a = std::max(a, pend_before[c]);
      }
    }
  }
  meta.fetch_in_progress = false;
}

void DsmContext::flush_page_diff_locked(PageId p) {
  chaos_point();
  PageMeta& meta = pages_[p];
  OMSP_CHECK(meta.twin != nullptr);
  // Write-protect BEFORE diffing: a sibling thread of this node may be
  // storing into the page right now (it holds write access). Revoking write
  // access first guarantees every store is either complete — and thus
  // captured by the diff — or will fault and wait on the page lock. Diffing
  // first would let a store land after the scan and silently vanish when the
  // twin is freed.
  if (meta.state == PageState::kReadWrite) {
    meta.state = PageState::kRead;
    set_prot(p, Protection::kRead);
  }
  // Snapshot the contents without touching the app mapping's protection:
  // relaxing an invalid page here would let the application read stale data
  // (or write) concurrently without faulting.
  std::uint8_t snapshot[kPageSize];
  heap_.snapshot_page(p, snapshot);
  const std::uint8_t* current = snapshot;
  DiffBytes diff = diff_pool_.acquire();
  create_diff_into(meta.twin.get(), current, diff, kPageSize);

  IntervalSeq tag;
  bool minted = false;
  VectorTime minted_vt;
  // Race attribution (see below): the newest interval that listed p BEFORE
  // this flush, and its close-time sync clock if still on file.
  IntervalSeq prev_listed = 0;
  VectorTime prev_svt;
  bool have_prev_svt = false;
  {
    std::lock_guard<std::mutex> tl(table_mutex_);
    if (race_ != nullptr) {
      prev_listed = last_listed_[p];
      const auto it = close_sync_vts_.find(prev_listed);
      if (it != close_sync_vts_.end()) {
        prev_svt = it->second;
        have_prev_svt = true;
      }
    }
    if (meta.written_since_flush && !diff.empty()) {
      // The twin holds writes no published interval covers yet. Mint a
      // fresh interval for them: its record carries our CURRENT vector
      // time, so it causally dominates every interval whose data those
      // writes consumed — the dominance that orders this diff correctly
      // against concurrent diffs for the same page at third parties.
      tag = ++vt_[id_];
      table_[id_].push_back(IntervalInfo{vt_, {p}});
      last_listed_[p] = tag;
      sync_vt_[id_] = tag; // own intervals are always sync-known to self
      stats_->add(Counter::kIntervals);
      OMSP_TRACE_EVENT(kIntervalClose, id_, tag, 1);
      OMSP_PTRACE(p, "flush mints interval seq=%u", tag);
      if (race_ != nullptr) {
        minted = true;
        minted_vt = sync_vt_;
        close_sync_vts_[tag] = sync_vt_;
      }
    } else {
      // All twin content is covered by published intervals listing p.
      tag = last_listed_[p];
    }
  }
  meta.written_since_flush = false;
  // Feed the detector the delta SINCE THE LAST COLLECTION (diff against the
  // race baseline), not the whole twin delta: a page can stay dirty across
  // many epochs, and the cumulative twin diff would re-attribute earlier,
  // already-ordered epochs' bytes to the freshly minted interval — phantom
  // races against a fetcher's properly-ordered writes. The baseline diff
  // hands each written byte to exactly one interval.
  //
  // Which interval: normally the fresh mint with the mint-time sync clock —
  // the close_interval collection advances the baseline at every close, so
  // a fetch-forced flush's delta is purely current-epoch writes (the racy-
  // kernel shape). The exception is losing the close/flush race: a close
  // listed p (prev_listed > race_collected_seq) but its collection loop has
  // not reached p yet, so the delta still holds pre-close bytes — attribute
  // it to that close's sync clock, never the mint, or no peer closing
  // concurrently with the OLDER interval could cover it (phantom races).
  // Post-close bytes folded into the close by that ordering are a documented
  // miss, never a phantom.
  if (meta.race_twin != nullptr) {
    DiffBytes race_diff = diff_pool_.acquire();
    create_diff_into(meta.race_twin.get(), current, race_diff, kPageSize);
    if (!race_diff.empty()) {
      if (have_prev_svt && prev_listed > meta.race_collected_seq) {
        race_->record_write(id_, p, prev_listed, prev_svt,
                            {race_diff.data(), race_diff.size()});
      } else if (minted) {
        race_->record_write(id_, p, tag, minted_vt,
                            {race_diff.data(), race_diff.size()});
      }
      // else: nothing minted and no uncollected close — skip (conservative).
    }
    diff_pool_.release(std::move(race_diff));
    meta.race_twin.reset();
  }

  stats_->add(Counter::kDiffsCreated);
  stats_->add(Counter::kDiffBytesCreated, diff.size());
  OMSP_TRACE_EVENT(kDiffCreate, id_, p, diff.size());
  if (auto* clock = sim::VirtualClock::current(); clock != nullptr)
    clock->charge(config_.cost.diff_create_base_us +
                  config_.cost.diff_byte_us * kPageSize);
  OMSP_PTRACE(p, "flush tag=%u bytes=%zu state=%d twin=%ld cur=%ld", tag,
              diff.size(), static_cast<int>(meta.state),
              reinterpret_cast<const long*>(meta.twin.get())[trace_off() / 8],
              reinterpret_cast<const long*>(current)[trace_off() / 8]);
  if (!diff.empty()) {
    stored_diff_bytes_.fetch_add(diff.size(), std::memory_order_relaxed);
    if (!meta.stored_diffs.empty() && meta.stored_diffs.back().first == tag) {
      // Same tag means same twin base with no local writes since; the newer
      // scan can only add remote-applied bytes, which equal the twin and
      // thus never appear. Replace defensively.
      stored_diff_bytes_.fetch_sub(meta.stored_diffs.back().second.size(),
                                   std::memory_order_relaxed);
      diff_pool_.release(std::move(meta.stored_diffs.back().second));
      meta.stored_diffs.back().second = std::move(diff);
    } else {
      OMSP_CHECK(meta.stored_diffs.empty() ||
                 meta.stored_diffs.back().first < tag);
      meta.stored_diffs.emplace_back(tag, std::move(diff));
    }
  } else {
    diff_pool_.release(std::move(diff));
  }
  meta.twin.reset();
  {
    std::lock_guard<std::mutex> dl(dirty_mutex_);
    dirty_.reset(p);
  }
}

std::optional<IntervalRecord> DsmContext::close_interval() {
  // Atomic under the table lock: the interval's record, its vector time, the
  // per-page "newest listing" marks and the watermark all publish together,
  // so a concurrent flush can never observe a half-closed interval.
  IntervalRecord rec;
  VectorTime close_svt;
  {
    std::lock_guard<std::mutex> tl(table_mutex_);
    {
      std::lock_guard<std::mutex> dl(dirty_mutex_);
      dirty_.for_each_set([&](std::size_t p) {
        rec.pages.push_back(static_cast<PageId>(p));
      });
    }
    if (rec.pages.empty()) return std::nullopt;
    rec.creator = id_;
    rec.seq = ++vt_[id_];
    rec.vt = vt_;
    table_[id_].push_back(IntervalInfo{rec.vt, rec.pages});
    for (PageId p : rec.pages) last_listed_[p] = rec.seq;
    sync_vt_[id_] = rec.seq;
    if (race_ != nullptr) {
      close_sync_vts_[rec.seq] = sync_vt_;
      close_svt = sync_vt_;
    }
  }
  for (PageId p : rec.pages)
    OMSP_PTRACE(p, "close lists page in interval seq=%u", rec.seq);
  stats_->add(Counter::kIntervals);
  OMSP_TRACE_EVENT(kIntervalClose, id_, rec.seq, rec.pages.size());

  if (race_ != nullptr) {
    // Collect each listed page's delta-since-last-collection NOW and hand it
    // to THIS close. Unflushed bytes can span several closes — the master's
    // sequential-section writes predate the fork close while its region
    // writes predate only the epilogue close — and deferring collection to
    // the next flush or sweep would fold them all into the newest interval,
    // one that peers closing concurrently with the OLDER interval can never
    // cover (phantom races). Per-close collection gives each interval
    // exactly its own bytes and advances the baseline past them.
    for (PageId p : rec.pages) {
      std::lock_guard<std::mutex> pl(page_lock(p));
      PageMeta& meta = pages_[p];
      if (meta.race_twin == nullptr) continue;
      std::uint8_t snapshot[kPageSize];
      heap_.snapshot_page(p, snapshot);
      DiffBytes race_diff = diff_pool_.acquire();
      create_diff_into(meta.race_twin.get(), snapshot, race_diff, kPageSize);
      if (!race_diff.empty())
        race_->record_write(id_, p, rec.seq, close_svt,
                            {race_diff.data(), race_diff.size()});
      diff_pool_.release(std::move(race_diff));
      std::memcpy(meta.race_twin.get(), snapshot, kPageSize);
      meta.race_collected_seq = rec.seq;
    }
  }

  if (config_.protocol == Protocol::kHomeLRC) {
    // Eagerly flush every dirty page's delta to its home, then retire the
    // twin: the home becomes the (only) place data is fetched from. The
    // transport calls happen AFTER the per-page lock is dropped: the inline
    // transport runs the home's handler — which takes the home's own page
    // lock — on this thread, and two contexts closing toward each other
    // would nest their page locks in opposite orders (a lock-order
    // inversion; ThreadSanitizer flags it). Deferring the sends keeps the
    // diff-before-records invariant (fetch_from_home relies on it): all
    // diffs still reach their homes before close_interval returns, and the
    // interval records only travel after that. Queued pages keep
    // fetch_in_progress set until their diff is sent, so a sibling thread
    // faulting in the gap waits instead of opening a NEWER interval whose
    // diff could overtake this one to the home.
    std::vector<std::pair<PageId, DiffBytes>> to_home;
    for (PageId p : rec.pages) {
      std::lock_guard<std::mutex> pl(page_lock(p));
      PageMeta& meta = pages_[p];
      if (meta.twin == nullptr) continue;
      if (meta.state == PageState::kReadWrite) {
        meta.state = PageState::kRead;
        set_prot(p, Protection::kRead); // write barrier before the scan
      }
      std::uint8_t snapshot[kPageSize];
      heap_.snapshot_page(p, snapshot);
      DiffBytes diff = diff_pool_.acquire();
      create_diff_into(meta.twin.get(), snapshot, diff, kPageSize);
      stats_->add(Counter::kDiffsCreated);
      stats_->add(Counter::kDiffBytesCreated, diff.size());
      OMSP_TRACE_EVENT(kDiffCreate, id_, p, diff.size());
      if (auto* clock = sim::VirtualClock::current(); clock != nullptr)
        clock->charge(config_.cost.diff_create_base_us +
                      config_.cost.diff_byte_us * kPageSize);
      // The at-close collection above already attributed this page's delta
      // to rec.seq; the baseline dies with the twin.
      meta.race_twin.reset();
      if (home_of(p) != id_ && !diff.empty()) {
        meta.fetch_in_progress = true;
        to_home.emplace_back(p, std::move(diff));
      } else {
        diff_pool_.release(std::move(diff));
      }
      meta.twin.reset();
      meta.written_since_flush = false;
      std::lock_guard<std::mutex> dl(dirty_mutex_);
      dirty_.reset(p);
    }
    for (auto& [p, diff] : to_home) {
      ByteWriter msg;
      msg.put<PageId>(p);
      msg.put_span<std::uint8_t>({diff.data(), diff.size()});
      (void)router_.transport().call(net::Envelope::request(
          id_, home_of(p), net::MsgType::kDiffToHome, msg));
      diff_pool_.release(std::move(diff));
      {
        std::lock_guard<std::mutex> pl(page_lock(p));
        pages_[p].fetch_in_progress = false;
      }
      fetch_cv_.notify_all();
    }
    return rec;
  }

  if (!config_.lazy_diffs) {
    for (PageId p : rec.pages) {
      std::lock_guard<std::mutex> pl(page_lock(p));
      if (pages_[p].twin != nullptr) flush_page_diff_locked(p);
    }
  }
  return rec;
}

void DsmContext::apply_records(const std::vector<IntervalRecord>& records,
                               bool sync) {
  chaos_point();
  std::vector<PageId> to_invalidate;
  std::uint64_t notices = 0;
  {
    std::lock_guard<std::mutex> tl(table_mutex_);
    // Store all records first so the vt <= table-size invariant holds when
    // the merged vector time is published.
    for (const auto& rec : records) {
      if (rec.creator == id_) continue;
      auto& tbl = table_[rec.creator];
      const IntervalSeq known = table_base_[rec.creator] +
                                static_cast<IntervalSeq>(tbl.size());
      if (rec.seq <= known) continue; // duplicate delivery
      OMSP_CHECK_MSG(rec.seq == known + 1,
                     "interval records must arrive in per-creator order");
      tbl.push_back(IntervalInfo{rec.vt, rec.pages});
    }
    for (const auto& rec : records) {
      if (rec.creator == id_) continue;
      if (vt_[rec.creator] < rec.seq) vt_[rec.creator] = rec.seq;
      vt_.merge(rec.vt);
      if (sync) {
        // LRC acquire semantics: a sync edge inherits the creator's full
        // close-time knowledge, so chains of barriers/lock transfers order
        // transitively. Data-path deliveries (sync=false) leave this clock
        // untouched.
        if (sync_vt_[rec.creator] < rec.seq) sync_vt_[rec.creator] = rec.seq;
        sync_vt_.merge(rec.vt);
      }
      for (PageId p : rec.pages) {
        ++notices;
        IntervalSeq& pend = pending_[std::size_t{p} * nc_ + rec.creator];
        if (rec.seq > pend) pend = rec.seq;
        OMSP_PTRACE(p, "notice creator=%u seq=%u pend=%u applied=%u",
                    rec.creator, rec.seq, pend,
                    applied_[std::size_t{p} * nc_ + rec.creator]);
        if (config_.protocol == Protocol::kHomeLRC && home_of(p) == id_)
          continue; // the home's copy is kept current by eager diffs
        if (pend > applied_[std::size_t{p} * nc_ + rec.creator])
          to_invalidate.push_back(p);
      }
    }
    // Invariant: every interval a merged vector time covers must be stored.
    for (ContextId c = 0; c < nc_; ++c)
      OMSP_CHECK_MSG(vt_[c] <= table_base_[c] + table_[c].size(),
                     "apply_records left an uncovered vector-time claim");
  }
  stats_->add(Counter::kWriteNoticesRecv, notices);
  if (notices > 0) OMSP_TRACE_EVENT(kWriteNoticesRecv, id_, notices);

  std::sort(to_invalidate.begin(), to_invalidate.end());
  to_invalidate.erase(std::unique(to_invalidate.begin(), to_invalidate.end()),
                      to_invalidate.end());
  for (PageId p : to_invalidate) {
    std::lock_guard<std::mutex> pl(page_lock(p));
    PageMeta& meta = pages_[p];
    if (meta.state != PageState::kInvalid) {
      meta.state = PageState::kInvalid;
      meta.fresh_invalidate = true;
      set_prot(p, Protection::kNone);
      stats_->add(Counter::kPageInvalidations);
      OMSP_TRACE_EVENT(kInvalidate, id_, p);
      OMSP_PTRACE(p, "invalidated");
    }
  }
}

std::vector<IntervalRecord>
DsmContext::records_unknown_to(const VectorTime& other_vt) {
  std::vector<IntervalRecord> out;
  std::lock_guard<std::mutex> tl(table_mutex_);
  for (ContextId c = 0; c < nc_; ++c) {
    OMSP_CHECK_MSG(vt_[c] <= table_base_[c] + table_[c].size(),
                   "vector time exceeds stored interval records");
    for (IntervalSeq seq = other_vt[c] + 1; seq <= vt_[c]; ++seq) {
      OMSP_CHECK_MSG(seq > table_base_[c],
                     "peer needs a garbage-collected interval record");
      const IntervalInfo& info = table_[c][seq - 1 - table_base_[c]];
      out.push_back(IntervalRecord{c, seq, info.vt, info.pages});
    }
  }
  return out;
}

std::vector<IntervalRecord> DsmContext::own_records_since(IntervalSeq since) {
  std::vector<IntervalRecord> out;
  std::lock_guard<std::mutex> tl(table_mutex_);
  for (IntervalSeq seq = since + 1; seq <= vt_[id_]; ++seq) {
    const IntervalInfo& info = table_[id_][seq - 1 - table_base_[id_]];
    out.push_back(IntervalRecord{id_, seq, info.vt, info.pages});
  }
  return out;
}

VectorTime DsmContext::vt_snapshot() {
  std::lock_guard<std::mutex> tl(table_mutex_);
  return vt_;
}

VectorTime DsmContext::sync_vt_snapshot() {
  std::lock_guard<std::mutex> tl(table_mutex_);
  return sync_vt_;
}

IntervalSeq DsmContext::own_seq() {
  std::lock_guard<std::mutex> tl(table_mutex_);
  return vt_[id_];
}

std::uint64_t DsmContext::vt_sum_of_own(IntervalSeq seq) {
  std::lock_guard<std::mutex> tl(table_mutex_);
  OMSP_CHECK(seq > table_base_[id_] &&
             seq <= table_base_[id_] + table_[id_].size());
  return table_[id_][seq - 1 - table_base_[id_]].vt.sum();
}

PageState DsmContext::page_state(PageId p) {
  std::lock_guard<std::mutex> pl(page_lock(p));
  return pages_[p].state;
}

bool DsmContext::page_dirty(PageId p) {
  std::lock_guard<std::mutex> dl(dirty_mutex_);
  return dirty_.test(p);
}

std::size_t DsmContext::stored_diff_count(PageId p) {
  std::lock_guard<std::mutex> pl(page_lock(p));
  return pages_[p].stored_diffs.size();
}

void DsmContext::validate_all_pages() {
  for (PageId p = 0; p < pages_.size(); ++p) {
    std::unique_lock<std::mutex> lock(page_lock(p));
    PageMeta& meta = pages_[p];
    if (meta.state != PageState::kInvalid) continue;
    OMSP_CHECK(!meta.fetch_in_progress);
    if (config_.protocol == Protocol::kHomeLRC)
      fetch_from_home(p, lock);
    else
      fetch_and_apply(p, lock);
    if (meta.twin != nullptr) {
      meta.state = PageState::kReadWrite;
      meta.written_since_flush = true;
      if (meta.prot != Protection::kReadWrite)
        set_prot(p, Protection::kReadWrite);
    } else {
      meta.state = PageState::kRead;
      set_prot(p, Protection::kRead);
    }
  }
}

void DsmContext::collect_garbage() {
  // Sound only at a quiescent, fully-validated barrier (the caller checked
  // all vector times are equal and every page everywhere is valid): no peer
  // can ever request a diff tagged <= the current vts again, and
  // records_unknown_to loops are empty for all peers from here.
  for (PageId p = 0; p < pages_.size(); ++p) {
    std::lock_guard<std::mutex> pl(page_lock(p));
    for (auto& [seq, bytes] : pages_[p].stored_diffs) {
      stored_diff_bytes_.fetch_sub(bytes.size(), std::memory_order_relaxed);
      diff_pool_.release(std::move(bytes));
    }
    pages_[p].stored_diffs.clear();
    pages_[p].stored_diffs.shrink_to_fit();
  }
  std::lock_guard<std::mutex> tl(table_mutex_);
  for (ContextId c = 0; c < nc_; ++c) {
    table_base_[c] = vt_[c];
    table_[c].clear();
    table_[c].shrink_to_fit();
  }
}

void DsmContext::flush_all_diffs() {
  for (PageId p = 0; p < pages_.size(); ++p) {
    std::lock_guard<std::mutex> pl(page_lock(p));
    if (pages_[p].twin != nullptr) flush_page_diff_locked(p);
  }
}

// --- overlapped fetch / barrier prefetch ------------------------------------

bool DsmContext::overlap_async_fetch() const {
  return config_.overlap.enabled && config_.overlap.async_fetch &&
         config_.protocol == Protocol::kLazyRC &&
         router_.transport().supports_async();
}

bool DsmContext::overlap_prefetch() const {
  return config_.overlap.enabled && config_.overlap.prefetch &&
         config_.protocol == Protocol::kLazyRC &&
         router_.transport().supports_async();
}

void DsmContext::start_prefetch_round() {
  if (!overlap_prefetch()) return;
  // Group every pending-but-unapplied (page, creator) by creator. The caller
  // (the barrier path) invokes this right after the departure records were
  // applied, so "pending > applied" is exactly the set of pages the barrier
  // invalidated (plus any older still-unfetched notices).
  struct Cand {
    PageId page = 0;
    IntervalSeq have = 0;
    IntervalSeq pend = 0;
  };
  std::vector<std::vector<Cand>> by_creator(nc_);
  VectorTime my_vt;
  {
    std::lock_guard<std::mutex> tl(table_mutex_);
    my_vt = vt_;
    for (PageId p = 0; p < pages_.size(); ++p) {
      // Only pages that went valid->invalid since the last round AND that
      // this context has faulted on before: it was using those, so it will
      // plausibly fault on them again. Touching the flags without the page
      // lock is safe — every worker is parked at the barrier.
      if (!pages_[p].fresh_invalidate) continue;
      pages_[p].fresh_invalidate = false;
      if (!pages_[p].ever_accessed) continue;
      for (ContextId c = 0; c < nc_; ++c) {
        if (c == id_) continue;
        const IntervalSeq pend = pending_[std::size_t{p} * nc_ + c];
        const IntervalSeq have = applied_[std::size_t{p} * nc_ + c];
        if (pend > have) by_creator[c].push_back({p, have, pend});
      }
    }
  }
  // applied_ only advances when a fetch session drains the buffer, so for a
  // page that sits prefetched-but-untouched it never moves. Raise each
  // candidate's `have` by the buffered coverage instead: the creator then
  // ships only diffs above what is already in hand, and a fully covered pair
  // drops out of the round entirely.
  {
    std::lock_guard<std::mutex> pm(prefetch_mutex_);
    for (ContextId c = 0; c < nc_; ++c)
      for (auto& cand : by_creator[c]) {
        const auto it = prefetch_buffer_.find(cand.page);
        if (it == prefetch_buffer_.end()) continue;
        for (const auto& ent : it->second)
          if (ent.creator == c) cand.have = std::max(cand.have, ent.covers);
      }
  }
  for (ContextId c = 0; c < nc_; ++c) {
    std::vector<std::pair<PageId, IntervalSeq>> list;
    list.reserve(by_creator[c].size());
    for (const Cand& cand : by_creator[c])
      if (cand.pend > cand.have) list.emplace_back(cand.page, cand.have);
    if (list.empty()) continue;
    ByteWriter req;
    req.put<std::uint32_t>(static_cast<std::uint32_t>(list.size()));
    for (const auto& [p, have] : list) {
      req.put<PageId>(p);
      req.put<IntervalSeq>(have);
    }
    my_vt.serialize(req);
    PrefetchBatch batch;
    batch.creator = c;
    batch.pages = list;
    batch.reply = router_.transport().call_async(net::Envelope::request(
        id_, c, net::MsgType::kDiffRequestBatch, req));
    stats_->add(Counter::kPrefetchBatches);
    stats_->add(Counter::kPrefetchPagesFetched, list.size());
    OMSP_TRACE_EVENT(kPrefetchBatch, id_, c, list.size());
    std::lock_guard<std::mutex> pm(prefetch_mutex_);
    prefetch_inflight_.push_back(std::move(batch));
  }
}

void DsmContext::absorb_batch_reply(PrefetchBatch& batch) {
  double complete = 0;
  auto reply = batch.reply.wait_at(&complete); // no clock advance: the wait
  // is charged when (if) a fetch session drains the entry, via ready_us.
  std::shared_ptr<std::vector<std::uint8_t>> backing;
  const bool zc = zerocopy_eligible(batch.creator, reply.size());
  if (zc)
    backing = std::make_shared<std::vector<std::uint8_t>>(std::move(reply));
  ByteReader r(zc ? *backing : reply);
  auto recs = deserialize_records(r);
  if (!recs.empty())
    apply_records(recs, /*sync=*/false); // data piggyback; takes page locks
  const auto npages = r.get<std::uint32_t>();
  OMSP_CHECK_MSG(npages == batch.pages.size(),
                 "batch reply page count mismatch");
  std::vector<std::pair<PageId, PrefetchEntry>> parsed;
  parsed.reserve(npages);
  std::uint64_t viewed = 0;
  for (std::uint32_t i = 0; i < npages; ++i) {
    const auto p = r.get<PageId>();
    OMSP_CHECK_MSG(p == batch.pages[i].first,
                   "batch reply page order mismatch");
    PrefetchEntry e;
    e.creator = batch.creator;
    e.floor = r.get<IntervalSeq>();
    e.ready_us = complete;
    // Coverage starts at the request-time `have` (already raised by any
    // prior buffered entries) and extends over whatever actually shipped.
    e.covers = std::max(batch.pages[i].second, e.floor);
    const auto count = r.get<std::uint32_t>();
    e.diffs.resize(count);
    for (auto& d : e.diffs) {
      d.seq = r.get<IntervalSeq>();
      d.vt_sum = r.get<std::uint64_t>();
      if (zc) {
        const auto n = r.get<std::uint32_t>();
        d.view = r.view_bytes(n);
        d.backing = backing;
        viewed += n;
      } else {
        d.owned = r.get_span<std::uint8_t>();
        d.view = d.owned;
      }
      e.covers = std::max(e.covers, d.seq);
    }
    parsed.emplace_back(p, std::move(e));
  }
  if (zc) {
    stats_->add(Counter::kZeroCopyDeliveries);
    stats_->add(Counter::kZeroCopyBytes, viewed);
    OMSP_TRACE_EVENT(kZeroCopyDeliver, id_, batch.creator, viewed);
  }
  std::lock_guard<std::mutex> pm(prefetch_mutex_);
  for (auto& [p, e] : parsed) prefetch_buffer_[p].push_back(std::move(e));
}

void DsmContext::absorb_inflight_for(PageId p) {
  std::vector<PrefetchBatch> mine;
  {
    std::lock_guard<std::mutex> pm(prefetch_mutex_);
    for (std::size_t i = 0; i < prefetch_inflight_.size();) {
      auto& batch = prefetch_inflight_[i];
      const bool contains =
          std::any_of(batch.pages.begin(), batch.pages.end(),
                      [p](const auto& pr) { return pr.first == p; });
      if (contains) {
        mine.push_back(std::move(batch));
        prefetch_inflight_.erase(prefetch_inflight_.begin() +
                                 static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  for (auto& batch : mine) absorb_batch_reply(batch);
}

void DsmContext::absorb_prefetch_replies() {
  std::vector<PrefetchBatch> batches;
  {
    std::lock_guard<std::mutex> pm(prefetch_mutex_);
    batches.swap(prefetch_inflight_);
  }
  for (auto& batch : batches) absorb_batch_reply(batch);
}

void DsmContext::clear_prefetch_buffer() {
  std::lock_guard<std::mutex> pm(prefetch_mutex_);
  prefetch_buffer_.clear();
}

void DsmContext::sync_cover(const VectorTime& vt) {
  std::lock_guard<std::mutex> tl(table_mutex_);
  sync_vt_.merge(vt);
}

void DsmContext::race_collect_pending() {
  if (race_ == nullptr) return;
  // Under lazy diffs a page nobody fetched still holds its epoch's writes in
  // the live twin delta; record the part written SINCE THE LAST COLLECTION
  // (diff against the race baseline — the cumulative twin delta would
  // re-attribute earlier epochs' ordered bytes to this epoch's interval),
  // attributed to the newest own interval listing the page (minted by
  // close_interval at barrier arrival) with that interval's close-time SYNC
  // vector time — it predates the episode's merges, so concurrent peers stay
  // mutually uncovered. Nothing is flushed, charged or counted: this is a
  // diagnostic read at a quiescent point.
  std::vector<PageId> dirty_pages;
  {
    std::lock_guard<std::mutex> dl(dirty_mutex_);
    dirty_.for_each_set(
        [&](std::size_t p) { dirty_pages.push_back(static_cast<PageId>(p)); });
  }
  for (PageId p : dirty_pages) {
    std::lock_guard<std::mutex> pl(page_lock(p));
    PageMeta& meta = pages_[p];
    if (meta.race_twin == nullptr) continue;
    std::uint8_t snapshot[kPageSize];
    heap_.snapshot_page(p, snapshot);
    const DiffBytes diff =
        create_diff(meta.race_twin.get(), snapshot, kPageSize);
    if (diff.empty()) continue;
    IntervalSeq seq;
    VectorTime svt;
    {
      std::lock_guard<std::mutex> tl(table_mutex_);
      seq = last_listed_[p];
      const auto it = close_sync_vts_.find(seq);
      if (it == close_sync_vts_.end())
        continue; // interval predates the detector's window (or GC'd away)
      svt = it->second;
    }
    race_->record_write(id_, p, seq, svt, {diff.data(), diff.size()});
    // Advance the baseline: these bytes now belong to interval `seq` and
    // must not be re-attributed by a later flush or sweep.
    std::memcpy(meta.race_twin.get(), snapshot, kPageSize);
    meta.race_collected_seq = seq;
  }
  // Per-close sync clocks are only needed until their epoch's sweep (write
  // entries are cleared there too); drop them so the map stays tiny.
  std::lock_guard<std::mutex> tl(table_mutex_);
  close_sync_vts_.clear();
}

} // namespace omsp::tmk
