#include "tmk/fault_registry.hpp"

#include <csignal>
#include <ctime>
#include <sys/mman.h>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "common/check.hpp"

namespace omsp::tmk {

namespace {

struct Region {
  std::uintptr_t base;
  std::uintptr_t end;
  FaultTarget* target;
};

// The handler must read the region table without taking a lock that a
// faulting thread could already hold. Registration is rare (system startup/
// shutdown) and never concurrent with faults on the affected region, so we
// use a small fixed table with a seqlock-free scheme: writers hold a mutex
// and update entries; the handler scans entries whose `target` is non-null.
// An entry is published by writing `target` last and retired by clearing
// `target` first.
// Sized for the topology sweeps: process mode registers one region per
// context, and OMSP_TOPOLOGY can ask for hundreds of nodes (flat:256x2 in
// process mode = 512 contexts). The handler's scan stays cheap — the table
// is ~24 bytes per entry and live entries cluster at the front.
constexpr std::size_t kMaxRegions = 1024;
Region g_regions[kMaxRegions]; // zero-initialized
std::mutex g_mutex;
struct sigaction g_old_action;
bool g_handler_installed = false;
std::size_t g_live = 0;

bool fault_is_write(const ucontext_t* uc) {
#if defined(__x86_64__)
  // Bit 1 of the page-fault error code: set for write accesses.
  return (uc->uc_mcontext.gregs[REG_ERR] & 0x2) != 0;
#else
  (void)uc;
  // Conservative: treat as write. The protocol is still correct; read/write
  // fault split in the stats is x86-only.
  return true;
#endif
}

// Runs in SIGSEGV context. Everything downstream of on_fault must stay
// signal-safe for the *synchronous* faults we take on protected DSM pages:
// the protocol's own locks are fine (a faulting thread never holds them at a
// shared-heap access), and trace emission is a lock-free SPSC ring push — the
// ring itself is pre-registered by Tracer::bind_thread before any fault.
void segv_handler(int signo, siginfo_t* info, void* ucontext) {
  const auto addr = reinterpret_cast<std::uintptr_t>(info->si_addr);
  for (auto& region : g_regions) {
    FaultTarget* target = __atomic_load_n(&region.target, __ATOMIC_ACQUIRE);
    if (target == nullptr) continue;
    if (addr >= region.base && addr < region.end) {
      target->on_fault(info->si_addr,
                       fault_is_write(static_cast<ucontext_t*>(ucontext)));
      return;
    }
  }
  // Not ours: restore previous disposition and re-raise so the process dies
  // with a normal segfault (and a usable core/stack).
  std::fprintf(stderr,
               "omsp: SIGSEGV at %p outside any DSM region — re-raising\n",
               info->si_addr);
  ::sigaction(signo, &g_old_action, nullptr);
  ::raise(signo);
}

} // namespace

void FaultRegistry::add_region(void* base, std::size_t bytes,
                               FaultTarget* target) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (!g_handler_installed) {
    struct sigaction sa {};
    sa.sa_sigaction = segv_handler;
    sa.sa_flags = SA_SIGINFO | SA_NODEFER;
    sigemptyset(&sa.sa_mask);
    OMSP_CHECK(::sigaction(SIGSEGV, &sa, &g_old_action) == 0);
    g_handler_installed = true;
  }
  for (auto& region : g_regions) {
    if (__atomic_load_n(&region.target, __ATOMIC_RELAXED) == nullptr) {
      region.base = reinterpret_cast<std::uintptr_t>(base);
      region.end = region.base + bytes;
      __atomic_store_n(&region.target, target, __ATOMIC_RELEASE);
      ++g_live;
      return;
    }
  }
  OMSP_CHECK_MSG(false, "too many registered DSM regions");
}

void FaultRegistry::remove_region(void* base) {
  std::lock_guard<std::mutex> lock(g_mutex);
  const auto b = reinterpret_cast<std::uintptr_t>(base);
  for (auto& region : g_regions) {
    if (__atomic_load_n(&region.target, __ATOMIC_RELAXED) != nullptr &&
        region.base == b) {
      __atomic_store_n(&region.target, static_cast<FaultTarget*>(nullptr),
                       __ATOMIC_RELEASE);
      --g_live;
      if (g_live == 0 && g_handler_installed) {
        ::sigaction(SIGSEGV, &g_old_action, nullptr);
        g_handler_installed = false;
      }
      return;
    }
  }
  OMSP_CHECK_MSG(false, "removing unknown DSM region");
}

std::size_t FaultRegistry::region_count() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_live;
}

namespace {

struct CalibrationTarget final : FaultTarget {
  void on_fault(void* addr, bool) override {
    auto base = reinterpret_cast<std::uintptr_t>(addr) & ~std::uintptr_t{4095};
    ::mprotect(reinterpret_cast<void*>(base), 4096, PROT_READ | PROT_WRITE);
  }
};

double thread_cpu_us() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e6 +
         static_cast<double>(ts.tv_nsec) * 1e-3;
}

} // namespace

double FaultRegistry::fault_trap_overhead_us() {
  static const double overhead = [] {
    void* page = ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (page == MAP_FAILED) return 0.0;
    CalibrationTarget target;
    FaultRegistry::add_region(page, 4096, &target);
    auto* c = static_cast<volatile char*>(page);
    constexpr int kIters = 400;
    // Warm up, then measure a protect/fault/store cycle...
    for (int i = 0; i < 20; ++i) {
      ::mprotect(page, 4096, PROT_NONE);
      *c = 1;
    }
    double t0 = thread_cpu_us();
    for (int i = 0; i < kIters; ++i) {
      ::mprotect(page, 4096, PROT_NONE);
      *c = 1;
    }
    const double with_fault = (thread_cpu_us() - t0) / kIters;
    // ...against the same work without the trap (the handler's mprotect is
    // mirrored by the explicit re-enable here, so the difference isolates
    // trap + delivery + sigreturn + retry).
    t0 = thread_cpu_us();
    for (int i = 0; i < kIters; ++i) {
      ::mprotect(page, 4096, PROT_NONE);
      ::mprotect(page, 4096, PROT_READ | PROT_WRITE);
      *c = 1;
    }
    const double without_fault = (thread_cpu_us() - t0) / kIters;
    FaultRegistry::remove_region(page);
    ::munmap(page, 4096);
    return with_fault > without_fault ? with_fault - without_fault : 0.0;
  }();
  return overhead;
}

} // namespace omsp::tmk
