// The classic TreadMarks C-style API (Tmk_*), as described in §3 of the
// paper and the TreadMarks manual. Programs written against real TreadMarks
// port to this facade with a rename of the header; underneath it drives a
// DsmSystem. The handle-based design (rather than true globals) keeps the
// facade usable from tests that create many clusters.
//
//   Tmk tmk(config);
//   tmk.startup();
//   char* arr = (char*)tmk.malloc(4096);
//   tmk.fork([&](unsigned proc_id) {       // Tmk_fork / Tmk_join pair
//     ... arr[...] ...
//     tmk.barrier(0);                       // Tmk_barrier
//     tmk.lock_acquire(3);                  // Tmk_lock_acquire
//     tmk.lock_release(3);
//   });
#pragma once

#include <functional>
#include <memory>

#include "tmk/system.hpp"

namespace omsp::tmk {

class Tmk {
public:
  explicit Tmk(Config config) : config_(std::move(config)) {}

  // Tmk_startup: creates the cluster (all threads start now and slaves block
  // until the first fork, §3.2).
  void startup() {
    OMSP_CHECK_MSG(system_ == nullptr, "Tmk_startup called twice");
    system_ = std::make_unique<DsmSystem>(config_);
  }

  // Tmk_exit.
  void exit() { system_.reset(); }

  bool started() const { return system_ != nullptr; }

  // Tmk_nprocs / Tmk_proc_id. proc_id is meaningful inside fork bodies.
  unsigned nprocs() const { return require().nprocs(); }
  static unsigned proc_id() { return DsmSystem::current_rank(); }

  // Tmk_malloc / Tmk_free: shared heap, master only, outside parallel
  // sections. Returns a pointer valid in the caller's context; use
  // global_addr()/from_global() to ship addresses across contexts.
  void* malloc(std::size_t bytes) {
    const GlobalAddr addr = require().shared_malloc(bytes, 16);
    return ThreadHeapBinding::base() + addr;
  }
  void free(void* ptr) { require().shared_free(global_addr(ptr)); }

  // Tmk_distribute's moral equivalent: translate a pointer into the
  // context-independent shared address and back.
  GlobalAddr global_addr(const void* ptr) const {
    return static_cast<GlobalAddr>(static_cast<const std::uint8_t*>(ptr) -
                                   ThreadHeapBinding::base());
  }
  template <typename T> T* from_global(GlobalAddr addr) const {
    return reinterpret_cast<T*>(ThreadHeapBinding::base() + addr);
  }

  // Tmk_fork + Tmk_join in one call: run fn(proc_id) on every processor and
  // wait for completion (the OpenMP-style usage of §3.2).
  void fork(const std::function<void(unsigned)>& fn) {
    require().parallel([&](Rank r) { fn(r); });
  }

  // Tmk_barrier(id). TreadMarks numbers its barriers; consistency-wise they
  // all behave identically here (one centralized manager).
  void barrier(unsigned id = 0) {
    (void)id;
    require().barrier();
  }

  // Tmk_lock_acquire / Tmk_lock_release.
  void lock_acquire(unsigned lock_id) { require().lock_acquire(lock_id); }
  void lock_release(unsigned lock_id) { require().lock_release(lock_id); }

  // Escape hatch to the full interface (stats, clocks, contexts).
  DsmSystem& system() { return require(); }

private:
  DsmSystem& require() const {
    OMSP_CHECK_MSG(system_ != nullptr, "call Tmk_startup first");
    return *system_;
  }

  Config config_;
  std::unique_ptr<DsmSystem> system_;
};

} // namespace omsp::tmk
