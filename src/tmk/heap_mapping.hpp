// Per-context shared-heap mappings.
//
// Every DSM context owns a private copy of the shared heap, kept coherent by
// the protocol. In thread mode the copy is backed by a memfd mapped twice
// (§3.3.1 of the paper):
//   * the "application" mapping, whose page protections drive access
//     detection (PROT_NONE = invalid, PROT_READ = valid clean,
//     PROT_READ|WRITE = valid dirty);
//   * the "alias" mapping, always read-write, used exclusively by the runtime
//     to build twins, create diffs and install updates while the application
//     mapping stays protected. This removes the write-enable mprotect that
//     the original TreadMarks needs before updating a page — the effect the
//     paper measures in Table 3 (Thrd/1 does 25–56% fewer mprotects than
//     Orig/1).
//
// In process mode ("original" TreadMarks) there is no alias mapping: the heap
// is one anonymous private mapping and the runtime must mprotect pages
// writable around updates, paying the extra system calls.
//
// All mprotect calls are counted on the owning context's StatsBoard and
// charged to the calling thread's virtual clock.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/cost_model.hpp"

namespace omsp::tmk {

enum class Protection { kNone, kRead, kReadWrite };

class HeapMapping {
public:
  // Creates the mappings; `alias` selects dual-mapping (thread) vs single
  // anonymous mapping (process/original). The heap starts zero-filled with
  // the application mapping PROT_READ (all pages valid, clean) — the initial
  // all-zero contents are trivially coherent across contexts. `owner` is the
  // context the mprotect counters and trace events are attributed to.
  HeapMapping(std::size_t bytes, bool alias, ContextId owner,
              StatsBoard* stats, const sim::CostModel* cost);
  ~HeapMapping();

  HeapMapping(const HeapMapping&) = delete;
  HeapMapping& operator=(const HeapMapping&) = delete;

  std::uint8_t* app_base() const { return app_base_; }
  // Runtime view of the page: the alias mapping when present, otherwise the
  // app mapping itself (callers must then arrange write access explicitly).
  std::uint8_t* runtime_base() const {
    return alias_base_ != nullptr ? alias_base_ : app_base_;
  }
  bool has_alias() const { return alias_base_ != nullptr; }

  std::size_t bytes() const { return bytes_; }
  std::size_t pages() const { return bytes_ / kHeapPageSize; }

  std::uint8_t* app_page(PageId p) const {
    return app_base_ + static_cast<std::size_t>(p) * kHeapPageSize;
  }
  std::uint8_t* runtime_page(PageId p) const {
    return runtime_base() + static_cast<std::size_t>(p) * kHeapPageSize;
  }

  // Counted, charged page-protection change on the application mapping.
  void protect(PageId page, Protection prot);

  // Copy the page's current contents into `out` without touching the
  // application mapping's protections: via the alias mapping when present,
  // otherwise through a transient private read-only window on the backing
  // memfd. Runtime reads must never relax the app mapping — doing so would
  // let concurrent application accesses slip past the access-detection
  // protocol.
  void snapshot_page(PageId page, std::uint8_t* out) const;

  // True if `addr` lies inside the application mapping.
  bool contains(const void* addr) const {
    auto a = reinterpret_cast<const std::uint8_t*>(addr);
    return a >= app_base_ && a < app_base_ + bytes_;
  }
  PageId page_of(const void* addr) const {
    auto a = reinterpret_cast<const std::uint8_t*>(addr);
    return static_cast<PageId>((a - app_base_) / kHeapPageSize);
  }

  static constexpr std::size_t kHeapPageSize = 4096;

private:
  std::size_t bytes_;
  int memfd_ = -1;
  std::uint8_t* app_base_ = nullptr;
  std::uint8_t* alias_base_ = nullptr;
  ContextId owner_;
  StatsBoard* stats_;
  const sim::CostModel* cost_;
};

} // namespace omsp::tmk
