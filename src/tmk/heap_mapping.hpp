// Per-context shared-heap mappings.
//
// Every DSM context owns a private copy of the shared heap, kept coherent by
// the protocol. In thread mode the copy is backed by a memfd mapped twice
// (§3.3.1 of the paper):
//   * the "application" mapping, whose page protections drive access
//     detection (PROT_NONE = invalid, PROT_READ = valid clean,
//     PROT_READ|WRITE = valid dirty);
//   * the "alias" mapping, always read-write, used exclusively by the runtime
//     to build twins, create diffs and install updates while the application
//     mapping stays protected. This removes the write-enable mprotect that
//     the original TreadMarks needs before updating a page — the effect the
//     paper measures in Table 3 (Thrd/1 does 25–56% fewer mprotects than
//     Orig/1).
//
// In process mode ("original" TreadMarks) the MODELED machine has no alias
// mapping: the runtime must mprotect pages writable around updates, paying
// the extra system calls. The HOST, however, always keeps a second
// read-write mapping of the backing memfd, used only by the runtime. The
// distinction matters because the original system's write-enable window is
// atomic with respect to its (single) application thread — the SIGIO
// handler interrupts it — while this runtime executes protocol handlers on
// other host threads, concurrently with application code. Relaxing the app
// mapping from a handler would open a window where an application store
// lands without faulting: no twin, no dirty bit, no write notice, and a
// later diff from a context holding the pre-window base silently reverts
// the store (a lost update). Handlers therefore write through the runtime
// mapping, the app mapping's protections never change, and process mode's
// extra mprotects are charged via charge_protect() as modeled cost only.
//
// All mprotect calls — real and modeled — are counted on the owning
// context's StatsBoard and charged to the calling thread's virtual clock.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/cost_model.hpp"

namespace omsp::tmk {

enum class Protection { kNone, kRead, kReadWrite };

class HeapMapping {
public:
  // Creates the mappings; `alias` selects dual-mapping (thread) vs single
  // anonymous mapping (process/original). The heap starts zero-filled with
  // the application mapping PROT_READ (all pages valid, clean) — the initial
  // all-zero contents are trivially coherent across contexts. `owner` is the
  // context the mprotect counters and trace events are attributed to.
  HeapMapping(std::size_t bytes, bool alias, ContextId owner,
              StatsBoard* stats, const sim::CostModel* cost);
  ~HeapMapping();

  HeapMapping(const HeapMapping&) = delete;
  HeapMapping& operator=(const HeapMapping&) = delete;

  std::uint8_t* app_base() const { return app_base_; }
  // Runtime view of the heap: a second always-writable mapping of the same
  // backing pages. Reads and writes through it never touch the application
  // mapping's protections, so concurrent application accesses keep faulting
  // no matter what the runtime is doing.
  std::uint8_t* runtime_base() const { return runtime_base_; }
  // Whether the MODELED machine has the persistent alias mapping (thread
  // mode, §3.3.1). Drives the mprotect accounting: when false, runtime
  // updates charge the original system's write-enable pair.
  bool has_alias() const { return modeled_alias_; }

  std::size_t bytes() const { return bytes_; }
  std::size_t pages() const { return bytes_ / kHeapPageSize; }

  std::uint8_t* app_page(PageId p) const {
    return app_base_ + static_cast<std::size_t>(p) * kHeapPageSize;
  }
  std::uint8_t* runtime_page(PageId p) const {
    return runtime_base() + static_cast<std::size_t>(p) * kHeapPageSize;
  }

  // Counted, charged page-protection change on the application mapping.
  void protect(PageId page, Protection prot);

  // Account for an mprotect the MODELED machine performs but the host no
  // longer needs: process mode's write-enable around a runtime update. In
  // the original system that window is atomic (the handler interrupts the
  // lone application thread); here the update goes through the runtime
  // mapping instead, and only the modeled cost is charged — same counter,
  // trace event and virtual-clock charge as protect(), no syscall.
  void charge_protect(PageId page, Protection prot);

  // Copy the page's current contents into `out` via the runtime mapping,
  // without touching the application mapping's protections. Runtime reads
  // must never relax the app mapping — doing so would let concurrent
  // application accesses slip past the access-detection protocol.
  void snapshot_page(PageId page, std::uint8_t* out) const;

  // True if `addr` lies inside the application mapping.
  bool contains(const void* addr) const {
    auto a = reinterpret_cast<const std::uint8_t*>(addr);
    return a >= app_base_ && a < app_base_ + bytes_;
  }
  PageId page_of(const void* addr) const {
    auto a = reinterpret_cast<const std::uint8_t*>(addr);
    return static_cast<PageId>((a - app_base_) / kHeapPageSize);
  }

  static constexpr std::size_t kHeapPageSize = 4096;

private:
  std::size_t bytes_;
  int memfd_ = -1;
  std::uint8_t* app_base_ = nullptr;
  std::uint8_t* runtime_base_ = nullptr;
  bool modeled_alias_ = false;
  ContextId owner_;
  StatsBoard* stats_;
  const sim::CostModel* cost_;
};

} // namespace omsp::tmk
