#include "tmk/heap_alloc.hpp"

#include "common/check.hpp"
#include "common/mathutil.hpp"

namespace omsp::tmk {

HeapAllocator::HeapAllocator(std::size_t heap_bytes) : total_(heap_bytes) {
  if (heap_bytes > 0) free_blocks_.emplace(0, heap_bytes);
}

GlobalAddr HeapAllocator::allocate(std::size_t bytes, std::size_t align) {
  OMSP_CHECK(bytes > 0);
  OMSP_CHECK(is_pow2(align));
  for (auto it = free_blocks_.begin(); it != free_blocks_.end(); ++it) {
    const GlobalAddr block = it->first;
    const std::size_t len = it->second;
    const GlobalAddr user = round_up(block, align);
    const std::size_t pad = static_cast<std::size_t>(user - block);
    if (pad + bytes > len) continue;

    free_blocks_.erase(it);
    if (pad > 0) free_blocks_.emplace(block, pad);
    const std::size_t used = pad + bytes;
    if (used < len) free_blocks_.emplace(block + used, len - used);

    live_.emplace(user, Live{user, bytes});
    in_use_ += bytes;
    return user;
  }
  return kNullGlobalAddr;
}

void HeapAllocator::free(GlobalAddr addr) {
  auto it = live_.find(addr);
  OMSP_CHECK_MSG(it != live_.end(), "free of unknown shared-heap block");
  GlobalAddr begin = it->second.block;
  std::size_t len = it->second.length;
  in_use_ -= it->second.length;
  live_.erase(it);

  // Coalesce with the following free block.
  auto next = free_blocks_.lower_bound(begin);
  if (next != free_blocks_.end() && next->first == begin + len) {
    len += next->second;
    free_blocks_.erase(next);
  }
  // Coalesce with the preceding free block.
  auto prev = free_blocks_.lower_bound(begin);
  if (prev != free_blocks_.begin()) {
    --prev;
    if (prev->first + prev->second == begin) {
      begin = prev->first;
      len += prev->second;
      free_blocks_.erase(prev);
    }
  }
  free_blocks_.emplace(begin, len);
}

std::size_t HeapAllocator::allocation_size(GlobalAddr addr) const {
  auto it = live_.find(addr);
  return it == live_.end() ? 0 : it->second.length;
}

} // namespace omsp::tmk
