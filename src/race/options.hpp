// omsp::race — on-line data-race detection for the DSM protocol.
//
// Mode selection for the vector-clock diff-overlap detector
// (docs/PROTOCOL.md "Race detection under lazy release consistency"):
//   * kOff  — the default. The runtime never constructs a Detector and every
//     hook is a null-pointer test, so all modeled numbers stay bit-for-bit
//     identical to the seed.
//   * kPage — byte-exact overlap: two diffs from concurrent intervals racing
//     on a page are reported only for the byte ranges both actually wrote.
//   * kWord — shadow granularity of 4-byte words: every written run is
//     widened to word boundaries before intersection, so two writers sharing
//     one word (sub-word false sharing, the classic torn-update hazard) are
//     flagged even when their byte ranges are disjoint.
//
// OMSP_RACE=off|page|word is the code-free enable, following the same
// resolution pattern as OMSP_COLL / OMSP_ZEROCOPY: consulted at DsmSystem
// construction when the Config leaves the detector off, and a set-but-
// malformed value is a hard error — a typo must not silently disable the
// correctness oracle.
#pragma once

#include <optional>
#include <string_view>

namespace omsp::race {

enum class Mode { kOff, kPage, kWord };

struct Options {
  Mode mode = Mode::kOff;

  bool enabled() const { return mode != Mode::kOff; }

  // Parse "off", "page" or "word"; nullopt on anything else.
  static std::optional<Options> parse(std::string_view spec);

  // Resolve OMSP_RACE from the environment; defaults when unset or empty.
  // A set but malformed value is a hard error (OMSP_CHECK), mirroring
  // OMSP_COLL.
  static Options from_env();
};

} // namespace omsp::race
