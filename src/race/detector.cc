#include "race/detector.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "tmk/diff.hpp"
#include "trace/tracer.hpp"

namespace omsp::race {

namespace {

// Word-mode shadow granularity: a write to any byte of a 4-byte word taints
// the whole word.
constexpr std::uint32_t kWordBytes = 4;

} // namespace

Detector::Detector(Options opts, std::uint32_t ncontexts)
    : opts_(opts), ncontexts_(ncontexts) {
  OMSP_CHECK_MSG(opts_.enabled(), "Detector constructed with OMSP_RACE off");
}

std::vector<ByteRange> Detector::ranges_of_diff(
    std::span<const std::uint8_t> diff) const {
  std::vector<ByteRange> runs;
  tmk::for_each_run(diff, tmk::kPageSize,
                    [&](std::size_t offset, const std::uint8_t*,
                        std::size_t length) {
                      auto lo = static_cast<std::uint32_t>(offset);
                      auto hi = static_cast<std::uint32_t>(offset + length);
                      if (opts_.mode == Mode::kWord) {
                        lo &= ~(kWordBytes - 1);
                        hi = (hi + kWordBytes - 1) & ~(kWordBytes - 1);
                      }
                      // Runs arrive in ascending offset order; widening can
                      // make neighbors touch or overlap — coalesce in place.
                      if (!runs.empty() && runs.back().hi >= lo)
                        runs.back().hi = std::max(runs.back().hi, hi);
                      else
                        runs.push_back({lo, hi});
                    });
  return runs;
}

void Detector::merge_ranges(std::vector<ByteRange>& into,
                            const std::vector<ByteRange>& add) {
  std::vector<ByteRange> merged;
  merged.reserve(into.size() + add.size());
  std::size_t i = 0, j = 0;
  auto push = [&](ByteRange r) {
    if (!merged.empty() && merged.back().hi >= r.lo)
      merged.back().hi = std::max(merged.back().hi, r.hi);
    else
      merged.push_back(r);
  };
  while (i < into.size() || j < add.size()) {
    if (j == add.size() || (i < into.size() && into[i].lo <= add[j].lo))
      push(into[i++]);
    else
      push(add[j++]);
  }
  into = std::move(merged);
}

void Detector::record_access(ContextId c, PageId page, bool is_write) {
  if (is_write) return; // writes are fully described by their flushed diffs
  std::lock_guard<std::mutex> lk(mutex_);
  auto& readers = readers_[page];
  auto it = std::lower_bound(readers.begin(), readers.end(), c);
  if (it == readers.end() || *it != c) readers.insert(it, c);
}

void Detector::record_write(ContextId creator, PageId page, IntervalSeq seq,
                            const tmk::VectorTime& vt,
                            std::span<const std::uint8_t> diff) {
  if (diff.empty()) return;
  std::vector<ByteRange> runs = ranges_of_diff(diff);
  if (runs.empty()) return;
  std::lock_guard<std::mutex> lk(mutex_);
  auto& entries = writes_[page];
  // A page can be flushed more than once within one interval (a fetch-forced
  // flush followed by the barrier flush): fold into the existing entry.
  for (auto& e : entries) {
    if (e.creator == creator && e.seq == seq) {
      merge_ranges(e.runs, runs);
      e.vt.merge(vt);
      return;
    }
  }
  entries.push_back(WriteEntry{creator, seq, vt, std::move(runs)});
}

void Detector::sweep(StatsBoard& board) {
  std::lock_guard<std::mutex> lk(mutex_);
  std::uint64_t checks = 0;
  std::uint64_t entries_swept = 0;
  std::vector<Report> found;
  for (auto& [page, entries] : writes_) {
    entries_swept += entries.size();
    if (entries.size() < 2) continue;
    // Deterministic pair order regardless of flush arrival order.
    std::sort(entries.begin(), entries.end(),
              [](const WriteEntry& a, const WriteEntry& b) {
                return a.creator != b.creator ? a.creator < b.creator
                                              : a.seq < b.seq;
              });
    const std::vector<ContextId>* readers = nullptr;
    if (auto it = readers_.find(page); it != readers_.end())
      readers = &it->second;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      for (std::size_t j = i + 1; j < entries.size(); ++j) {
        const WriteEntry& a = entries[i];
        const WriteEntry& b = entries[j];
        if (a.creator == b.creator) continue; // same context: ordered by seq
        ++checks;
        if (a.vt.covers(b.creator, b.seq) || b.vt.covers(a.creator, a.seq))
          continue; // ordered by happens-before: synchronized
        // Concurrent intervals: intersect their run lists (both sorted and
        // disjoint) and merge touching intersections into maximal ranges.
        std::size_t x = 0, y = 0;
        std::vector<ByteRange> overlap;
        while (x < a.runs.size() && y < b.runs.size()) {
          const std::uint32_t lo = std::max(a.runs[x].lo, b.runs[y].lo);
          const std::uint32_t hi = std::min(a.runs[x].hi, b.runs[y].hi);
          if (lo < hi) {
            if (!overlap.empty() && overlap.back().hi >= lo)
              overlap.back().hi = std::max(overlap.back().hi, hi);
            else
              overlap.push_back({lo, hi});
          }
          if (a.runs[x].hi < b.runs[y].hi)
            ++x;
          else
            ++y;
        }
        for (const ByteRange& r : overlap) {
          Report rep;
          rep.page = page;
          rep.lo = r.lo;
          rep.hi = r.hi;
          rep.ctx_a = a.creator;
          rep.ctx_b = b.creator;
          rep.seq_a = a.seq;
          rep.seq_b = b.seq;
          rep.vt_a = a.vt;
          rep.vt_b = b.vt;
          if (readers != nullptr) rep.readers = *readers;
          found.push_back(std::move(rep));
        }
      }
    }
  }
  if (checks > 0) {
    board.add(Counter::kRaceChecks, checks);
    OMSP_TRACE_EVENT(kRaceCheck, 0, checks, entries_swept);
  }
  for (const Report& r : found) {
    board.add(Counter::kRacesDetected);
    const std::uint64_t arg0 = (static_cast<std::uint64_t>(r.page) << 32) |
                               (static_cast<std::uint64_t>(r.lo) << 16) |
                               static_cast<std::uint64_t>(r.hi);
    const std::uint64_t arg1 = (static_cast<std::uint64_t>(r.ctx_a) << 48) |
                               (static_cast<std::uint64_t>(r.ctx_b) << 32) |
                               (static_cast<std::uint64_t>(r.seq_a & 0xffff)
                                << 16) |
                               static_cast<std::uint64_t>(r.seq_b & 0xffff);
    OMSP_TRACE_EVENT(kRaceDetected, 0, arg0, arg1);
  }
  reports_.insert(reports_.end(), std::make_move_iterator(found.begin()),
                  std::make_move_iterator(found.end()));
  writes_.clear();
  readers_.clear();
}

std::vector<Report> Detector::reports() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return reports_;
}

std::uint64_t Detector::race_count() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return reports_.size();
}

} // namespace omsp::race
