// On-line vector-clock data-race detection for the DSM protocol.
//
// The detector piggybacks on the structures the multiple-writer protocol
// already maintains: every flushed diff is the canonical byte-exact record of
// what one context wrote during one interval, and the interval's VectorTime
// is its position in the happens-before partial order. That makes write-write
// race detection a pure overlap check, run at the barrier/join sweep:
//
//   two write entries (c_a, seq_a, vt_a, runs_a) and (c_b, seq_b, vt_b,
//   runs_b) on the same page race iff
//     c_a != c_b
//     && !vt_a.covers(c_b, seq_b) && !vt_b.covers(c_a, seq_a)   (concurrent)
//     && runs_a ∩ runs_b != ∅                                   (overlap)
//
// Under lazy release consistency any properly synchronized pair of writes to
// the same byte is ordered: the second writer's page fetch forces the first
// writer's flush and merges its interval record into the second's vector
// time before the second interval closes, so one of the covers() tests
// succeeds. Only genuinely unsynchronized writers stay mutually uncovered.
// Disjoint-byte concurrent writes to one page (false sharing) are the
// multiple-writer protocol's bread and butter and are deliberately NOT
// flagged in page mode; word mode widens every run to 4-byte boundaries
// first, so sub-word sharing of one machine word is reported.
//
// Blind spots (see docs/PROTOCOL.md): races between sibling threads of the
// same context (no diff is minted between them — that is ThreadSanitizer's
// domain), and writes whose new value equals the old byte (invisible to a
// diff-based oracle).
//
// Thread safety: all mutating entry points take one internal mutex. They are
// called from fault handlers and flush paths — already serialized per page by
// the context's page locks — and from the single-threaded barrier sweep, so
// the mutex is uncontended in practice.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "race/options.hpp"
#include "tmk/vclock.hpp"

namespace omsp::race {

// Half-open byte range [lo, hi) within a page.
struct ByteRange {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  bool operator==(const ByteRange&) const = default;
};

// One detected write-write race: a maximal overlapping byte range between
// two concurrent intervals' diffs on one page. `readers` lists every context
// that took a read fault on the page since the previous sweep (informational
// — a racy reader is usually among them).
struct Report {
  PageId page = kInvalidPage;
  std::uint32_t lo = 0; // overlapping byte range [lo, hi) within the page
  std::uint32_t hi = 0;
  ContextId ctx_a = kInvalidContext; // the two racing writers, ctx_a < ctx_b
  ContextId ctx_b = kInvalidContext;
  IntervalSeq seq_a = 0; // their interval sequence numbers
  IntervalSeq seq_b = 0;
  tmk::VectorTime vt_a; // and the (mutually non-covering) interval vts
  tmk::VectorTime vt_b;
  std::vector<ContextId> readers;
};

class Detector {
public:
  Detector(Options opts, std::uint32_t ncontexts);

  // Fault-path hook: context `c` took an access miss on `page`. Readers are
  // remembered to annotate reports; writes are fully described by the diffs
  // recorded below, so write faults are ignored here.
  void record_access(ContextId c, PageId page, bool is_write);

  // Flush-path hook: context `creator` published `diff` for `page` as part
  // of interval (creator, seq) whose closing vector time is `vt`. The diff
  // is parsed into byte ranges immediately (word mode widens to 4-byte
  // boundaries); the bytes themselves are not retained. A page flushed twice
  // within one interval (fetch-forced flush, then barrier flush) merges into
  // one entry.
  void record_write(ContextId creator, PageId page, IntervalSeq seq,
                    const tmk::VectorTime& vt,
                    std::span<const std::uint8_t> diff);

  // Barrier/join-time sweep: run the pairwise concurrency + overlap check
  // over every page history accumulated since the last sweep, then clear the
  // histories. Charges kRaceChecks/kRacesDetected to `board` and emits the
  // paired kRaceCheck/kRaceDetected trace events (stats<->trace audit).
  // Reports accumulate across sweeps for reports().
  void sweep(StatsBoard& board);

  // All reports so far, in deterministic order (page, then entry order).
  std::vector<Report> reports() const;

  std::uint64_t race_count() const;

  const Options& options() const { return opts_; }

private:
  struct WriteEntry {
    ContextId creator;
    IntervalSeq seq;
    tmk::VectorTime vt;
    std::vector<ByteRange> runs; // sorted, disjoint, non-adjacent
  };

  // Merge `add` (sorted, disjoint) into `into`, coalescing overlapping and
  // adjacent ranges.
  static void merge_ranges(std::vector<ByteRange>& into,
                           const std::vector<ByteRange>& add);

  std::vector<ByteRange> ranges_of_diff(std::span<const std::uint8_t> diff)
      const;

  Options opts_;
  std::uint32_t ncontexts_;

  mutable std::mutex mutex_;
  // std::map keeps page order deterministic for report/test stability.
  std::map<PageId, std::vector<WriteEntry>> writes_;
  std::map<PageId, std::vector<ContextId>> readers_;
  std::vector<Report> reports_;
};

} // namespace omsp::race
