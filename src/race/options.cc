#include "race/options.hpp"

#include <cstdlib>

#include "common/check.hpp"

namespace omsp::race {

std::optional<Options> Options::parse(std::string_view spec) {
  Options opts;
  if (spec == "off") {
    opts.mode = Mode::kOff;
  } else if (spec == "page") {
    opts.mode = Mode::kPage;
  } else if (spec == "word") {
    opts.mode = Mode::kWord;
  } else {
    return std::nullopt;
  }
  return opts;
}

Options Options::from_env() {
  const char* env = std::getenv("OMSP_RACE");
  if (env == nullptr || *env == '\0') return Options{};
  auto opts = parse(env);
  OMSP_CHECK_MSG(opts.has_value(),
                 "malformed OMSP_RACE spec (want off | page | word)");
  return *opts;
}

} // namespace omsp::race
